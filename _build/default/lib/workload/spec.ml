type category = Small_working_set | Large_irregular | Large_regular

let category_name = function
  | Small_working_set -> "small working set"
  | Large_irregular -> "large working set, irregular access"
  | Large_regular -> "large working set, regular access"

type model = epc_pages:int -> input:Input.t -> Trace.t

(* Scale an event count by the input set's size factor (train < ref). *)
let scale input n =
  max 1 (int_of_float (Input.size_factor input *. float_of_int n))

(* A fraction of the EPC, in pages. *)
let frac epc r = max 1 (int_of_float (float_of_int epc *. r))

let seed_for ~base ~input = Input.seed_of input ~base

(* ------------------------------------------------------------------ *)
(* Large working set, regular access                                   *)
(* ------------------------------------------------------------------ *)

let microbenchmark ~epc_pages ~input =
  (* The §1 motivation program: a loop sequentially scanning a region ~8x
     the EPC (1 GB against a 96 MB EPC on real hardware). *)
  let pages = 8 * epc_pages in
  let pattern =
    Pattern.repeat (max 1 (scale input 2))
      (Pattern.sequential ~site:0 ~base:0 ~pages ~events_per_page:8
         ~compute:27_000 ~jitter:0.05)
  in
  Trace.make ~name:"microbenchmark" ~elrange_pages:pages ~footprint_pages:pages
    ~seed:(seed_for ~base:101 ~input)
    ~sites:[ (0, "scan_loop") ]
    pattern

let bwaves ~epc_pages ~input =
  (* CFD over several field arrays advancing in lockstep: concurrent
     sequential streams, the shape of Fig. 3a. *)
  let stream_pages = frac epc_pages 0.75 in
  let streams = List.init 5 (fun i -> (i * stream_pages, stream_pages)) in
  let footprint = 5 * stream_pages in
  let sweep =
    Pattern.multi_stream ~site:0 ~streams ~events_per_page:10 ~compute:56_000
      ~jitter:0.25
  in
  let coefficients =
    Pattern.zipf ~site:1 ~base:footprint ~pages:(frac epc_pages 0.05)
      ~events:(scale input 8_000) ~s:1.2 ~compute:20_000 ~jitter:0.3
  in
  let round = Pattern.weighted_interleave [ (12, sweep); (1, coefficients) ] in
  let pattern = Pattern.repeat (max 1 (scale input 2)) round in
  Trace.make ~name:"bwaves"
    ~elrange_pages:(footprint + frac epc_pages 0.05)
    ~footprint_pages:(footprint + frac epc_pages 0.05)
    ~seed:(seed_for ~base:102 ~input)
    ~sites:[ (0, "field_sweep"); (1, "coefficients") ]
    pattern

let lbm ~epc_pages ~input =
  (* Lattice-Boltzmann: whole-array source/destination sweeps alternating
     each timestep — the clean diagonal of Fig. 3c. *)
  let array_pages = frac epc_pages 1.5 in
  let sweep site base =
    Pattern.sequential ~site ~base ~pages:array_pages ~events_per_page:10
      ~compute:34_000 ~jitter:0.15
  in
  let timestep = Pattern.seq_list [ sweep 0 0; sweep 1 array_pages ] in
  let pattern = Pattern.repeat (max 1 (scale input 3)) timestep in
  Trace.make ~name:"lbm" ~elrange_pages:(2 * array_pages)
    ~footprint_pages:(2 * array_pages)
    ~seed:(seed_for ~base:103 ~input)
    ~sites:[ (0, "stream_src"); (1, "stream_dst") ]
    pattern

let wrf ~epc_pages ~input =
  (* Weather model: phased sweeps over many smaller field arrays; one
     physics kernel walks with a stride. *)
  let field_pages = frac epc_pages 0.5 in
  let fields =
    List.init 6 (fun i ->
        Pattern.sequential ~site:i ~base:(i * field_pages) ~pages:field_pages
          ~events_per_page:8 ~compute:80_000 ~jitter:0.2)
  in
  let strided =
    Pattern.strided ~site:6 ~base:0 ~pages:(3 * field_pages) ~stride:3
      ~events_per_page:3 ~compute:55_000 ~jitter:0.2
  in
  let phase = Pattern.seq_list (fields @ [ strided ]) in
  let pattern = Pattern.repeat (max 1 (scale input 2)) phase in
  let sites =
    List.init 6 (fun i -> (i, Printf.sprintf "field%d_sweep" i))
    @ [ (6, "physics_strided") ]
  in
  Trace.make ~name:"wrf" ~elrange_pages:(6 * field_pages)
    ~footprint_pages:(6 * field_pages)
    ~seed:(seed_for ~base:104 ~input)
    ~sites pattern

(* ------------------------------------------------------------------ *)
(* Large working set, irregular access                                  *)
(* ------------------------------------------------------------------ *)

let roms ~epc_pages ~input =
  (* Ocean model: short sequential bursts at scattered grid positions.
     Every adjacent-page fault pair looks like a nascent stream, so DFP
     keeps preloading pages that are never used — the 42%-overhead
     pathology of Fig. 8. *)
  let grid_pages = 3 * epc_pages in
  let burst site =
    Pattern.bursty ~site ~base:0 ~pages:grid_pages ~events:(scale input 14_000)
      ~run_min:2 ~run_max:3 ~events_per_page:2 ~compute:500 ~jitter:0.2
  in
  let strided =
    Pattern.strided ~site:3 ~base:0 ~pages:(2 * epc_pages) ~stride:13
      ~events_per_page:4 ~compute:900 ~jitter:0.2
  in
  let hot =
    Pattern.zipf ~site:4 ~base:grid_pages ~pages:(frac epc_pages 0.1)
      ~events:(scale input 4_000) ~s:1.1 ~compute:900 ~jitter:0.3
  in
  let pattern =
    Pattern.weighted_interleave
      [ (4, burst 0); (4, burst 1); (4, burst 2); (3, strided); (2, hot) ]
  in
  let sites =
    [
      (0, "grid_burst_a"); (1, "grid_burst_b"); (2, "grid_burst_c");
      (3, "column_sweep"); (4, "diagnostics");
    ]
  in
  Trace.make ~name:"roms"
    ~elrange_pages:(grid_pages + frac epc_pages 0.1)
    ~footprint_pages:(grid_pages + frac epc_pages 0.1)
    ~seed:(seed_for ~base:105 ~input)
    ~sites pattern

let mcf ~epc_pages ~input =
  (* CPU2017 mcf: the §5.2 dilemma.  Many sites interleave hot structure
     accesses (Class 1) with irregular arc lookups (Class 3) at the same
     instruction, with almost no Class 2 — instrumenting them trades
     avoided faults against per-access check overhead, and the two
     roughly cancel. *)
  let hot_pages = frac epc_pages 0.4 in
  let cold_base = hot_pages in
  let cold_pages = 3 * epc_pages in
  let n_mixed = 98 in
  (* The key input dependence of §5.2: on the train input these sites look
     usefully irregular (and get instrumented); on the ref inputs the same
     instructions run hot-dominated, so the checks tax mostly Class 1
     accesses and the benefit washes out. *)
  let ratio_base =
    match input with Input.Train -> 0.18 | Input.Ref _ -> 0.008
  in
  let ratio_step =
    match input with Input.Train -> 0.08 | Input.Ref _ -> 0.004
  in
  let mixed =
    List.init n_mixed (fun i ->
        let irregular_ratio = ratio_base +. (ratio_step *. float_of_int (i mod 4)) in
        ( 2,
          Pattern.mixed_site ~site:i ~hot_base:0 ~hot_pages ~cold_base
            ~cold_pages ~events:(scale input 900) ~irregular_ratio
            ~compute:6_000 ~jitter:0.3 ))
  in
  let hot_only =
    List.init 15 (fun i ->
        ( 2,
          Pattern.zipf ~site:(n_mixed + i) ~base:0 ~pages:hot_pages
            ~events:(scale input 1_400) ~s:1.2 ~compute:8_000 ~jitter:0.3 ))
  in
  let init_scan =
    (* Struct-of-arrays initialization touches nodes >4 KB apart, so the
       fault sequence is strided, not sequential: nothing for DFP. *)
    Pattern.strided ~site:(n_mixed + 15) ~base:cold_base ~pages:cold_pages
      ~stride:2 ~events_per_page:1 ~compute:2_000 ~jitter:0.1
  in
  let tree_walk =
    (* Short adjacent-page walks along the spanning tree: the modest
       false-stream source behind mcf's small DFP overhead in Fig. 8. *)
    ( 1,
      Pattern.bursty ~site:(n_mixed + 16) ~base:cold_base ~pages:cold_pages
        ~events:(scale input 9_000) ~run_min:2 ~run_max:3 ~events_per_page:4
        ~compute:1_500 ~jitter:0.2 )
  in
  let pattern =
    Pattern.seq_list
      [ init_scan; Pattern.weighted_interleave ((tree_walk :: mixed) @ hot_only) ]
  in
  let sites =
    List.init n_mixed (fun i -> (i, Printf.sprintf "arc_lookup%d" i))
    @ List.init 15 (fun i -> (n_mixed + i, Printf.sprintf "node_hot%d" i))
    @ [ (n_mixed + 15, "network_init"); (n_mixed + 16, "tree_walk") ]
  in
  Trace.make ~name:"mcf"
    ~elrange_pages:(cold_base + cold_pages)
    ~footprint_pages:(cold_base + cold_pages)
    ~seed:(seed_for ~base:106 ~input)
    ~sites pattern

let mcf_2006 ~epc_pages ~input =
  (* CPU2006 mcf: same problem, different implementation — the irregular
     accesses live in sites of their own, so SIP can instrument them
     without taxing hot accesses (+4.9% in the paper). *)
  let hot_pages = frac epc_pages 0.4 in
  let cold_base = hot_pages in
  let cold_pages = frac epc_pages 1.6 in
  let n_irregular = 114 in
  let irregular =
    List.init n_irregular (fun i ->
        ( 2,
          Pattern.uniform_random ~site:i ~base:cold_base ~pages:cold_pages
            ~events:(scale input 420) ~compute:17_000 ~jitter:0.3 ))
  in
  let hot_only =
    List.init 30 (fun i ->
        ( 3,
          Pattern.zipf ~site:(n_irregular + i) ~base:0 ~pages:hot_pages
            ~events:(scale input 1_600) ~s:1.2 ~compute:75_000 ~jitter:0.3 ))
  in
  let init_scan =
    Pattern.strided ~site:(n_irregular + 30) ~base:cold_base ~pages:cold_pages
      ~stride:2 ~events_per_page:1 ~compute:2_000 ~jitter:0.1
  in
  let pattern =
    Pattern.seq_list
      [ init_scan; Pattern.weighted_interleave (irregular @ hot_only) ]
  in
  let sites =
    List.init n_irregular (fun i -> (i, Printf.sprintf "arc_scan%d" i))
    @ List.init 30 (fun i -> (n_irregular + i, Printf.sprintf "basket_hot%d" i))
    @ [ (n_irregular + 30, "network_init") ]
  in
  Trace.make ~name:"mcf.2006"
    ~elrange_pages:(cold_base + cold_pages)
    ~footprint_pages:(cold_base + cold_pages)
    ~seed:(seed_for ~base:107 ~input)
    ~sites pattern

let deepsjeng ~epc_pages ~input =
  (* Chess: transposition-table probes scattered over a table much larger
     than the EPC (Fig. 3b), plus a hot evaluation core and move stacks
     that touch short runs of adjacent pages. *)
  let table_base = frac epc_pages 0.3 in
  let table_pages = 4 * epc_pages in
  let n_probe = 34 in
  let probes =
    List.init n_probe (fun i ->
        ( 2,
          Pattern.uniform_random ~site:i ~base:table_base ~pages:table_pages
            ~events:(scale input 1_200) ~compute:2_000 ~jitter:0.3 ))
  in
  let eval =
    List.init 8 (fun i ->
        ( 3,
          Pattern.zipf ~site:(n_probe + i) ~base:0 ~pages:table_base
            ~events:(scale input 2_600) ~s:1.3 ~compute:2_500 ~jitter:0.3 ))
  in
  (* Move generation touches short runs of adjacent stack/board pages;
     with many touches per page its Class 3 share stays under the SIP
     threshold, so its faults are left to DFP — which opens streams that
     die after two or three pages.  This site is both the reason SIP's
     fault coverage is partial and the reason plain DFP hurts deepsjeng. *)
  let move_stack =
    ( 60,
      Pattern.bursty ~site:(n_probe + 8) ~base:table_base ~pages:table_pages
        ~events:(scale input 400_000) ~run_min:2 ~run_max:3 ~events_per_page:8
        ~compute:400 ~jitter:0.2 )
  in
  let pattern = Pattern.weighted_interleave (probes @ eval @ [ move_stack ]) in
  let sites =
    List.init n_probe (fun i -> (i, Printf.sprintf "tt_probe%d" i))
    @ List.init 8 (fun i -> (n_probe + i, Printf.sprintf "eval%d" i))
    @ [ (n_probe + 8, "move_stack") ]
  in
  Trace.make ~name:"deepsjeng"
    ~elrange_pages:(table_base + table_pages)
    ~footprint_pages:(table_base + table_pages)
    ~seed:(seed_for ~base:108 ~input)
    ~sites pattern

let omnetpp ~epc_pages ~input =
  (* Discrete-event network simulation: chasing message/module pointers
     through a fragmented heap. *)
  let heap_pages = frac epc_pages 2.5 in
  let chases =
    List.init 18 (fun i ->
        ( 2,
          Pattern.pointer_chase ~site:i ~base:0 ~pages:heap_pages
            ~events:(scale input 2_200) ~locality:0.55 ~compute:2_000
            ~jitter:0.3 ))
  in
  let queue =
    List.init 6 (fun i ->
        ( 2,
          Pattern.zipf ~site:(18 + i) ~base:heap_pages
            ~pages:(frac epc_pages 0.15) ~events:(scale input 2_400) ~s:1.2
            ~compute:1_300 ~jitter:0.3 ))
  in
  let pattern = Pattern.weighted_interleave (chases @ queue) in
  let sites =
    List.init 18 (fun i -> (i, Printf.sprintf "msg_chase%d" i))
    @ List.init 6 (fun i -> (18 + i, Printf.sprintf "event_queue%d" i))
  in
  Trace.make ~name:"omnetpp"
    ~elrange_pages:(heap_pages + frac epc_pages 0.15)
    ~footprint_pages:(heap_pages + frac epc_pages 0.15)
    ~seed:(seed_for ~base:109 ~input)
    ~sites pattern

let xz ~epc_pages ~input =
  (* Compression: a sequential pass over the input interleaved with match
     probes jumping around the dictionary window. *)
  let input_pages = 2 * epc_pages in
  let window_base = input_pages in
  let window_pages = epc_pages in
  let scan =
    Pattern.sequential ~site:0 ~base:0 ~pages:input_pages ~events_per_page:4
      ~compute:30_000 ~jitter:0.15
  in
  let n_match = 46 in
  let matches =
    List.init n_match (fun i ->
        ( 1,
          Pattern.uniform_random ~site:(1 + i) ~base:window_base
            ~pages:window_pages ~events:(scale input 800) ~compute:8_000
            ~jitter:0.3 ))
  in
  let huffman =
    List.init 8 (fun i ->
        ( 1,
          Pattern.zipf ~site:(1 + n_match + i)
            ~base:(window_base + window_pages) ~pages:(frac epc_pages 0.08)
            ~events:(scale input 1_500) ~s:1.3 ~compute:10_000 ~jitter:0.3 ))
  in
  let pattern =
    Pattern.weighted_interleave (((n_match + 8) / 3, scan) :: (matches @ huffman))
  in
  let sites =
    ((0, "input_scan")
    :: List.init n_match (fun i -> (1 + i, Printf.sprintf "match_probe%d" i)))
    @ List.init 8 (fun i -> (1 + n_match + i, Printf.sprintf "huffman%d" i))
  in
  Trace.make ~name:"xz"
    ~elrange_pages:(window_base + window_pages + frac epc_pages 0.08)
    ~footprint_pages:(window_base + window_pages + frac epc_pages 0.08)
    ~seed:(seed_for ~base:110 ~input)
    ~sites pattern

(* ------------------------------------------------------------------ *)
(* Small working set                                                    *)
(* ------------------------------------------------------------------ *)

let small_ws ~name ~seed_base ~epc_pages ~input ~build =
  let trace_pattern, footprint, sites = build epc_pages input in
  Trace.make ~name ~elrange_pages:footprint ~footprint_pages:footprint
    ~seed:(seed_for ~base:seed_base ~input)
    ~sites trace_pattern

let cactuBSSN ~epc_pages ~input =
  small_ws ~name:"cactuBSSN" ~seed_base:111 ~epc_pages ~input
    ~build:(fun epc input ->
      let field = frac epc 0.2 in
      let streams = List.init 3 (fun i -> (i * field, field)) in
      let sweep =
        Pattern.multi_stream ~site:0 ~streams ~events_per_page:8 ~compute:2_200
          ~jitter:0.2
      in
      let hot =
        Pattern.zipf ~site:1 ~base:(3 * field) ~pages:(frac epc 0.05)
          ~events:(scale input 12_000) ~s:1.2 ~compute:1_600 ~jitter:0.3
      in
      ( Pattern.repeat (max 1 (scale input 3))
          (Pattern.weighted_interleave [ (5, sweep); (1, hot) ]),
        (3 * field) + frac epc 0.05,
        [ (0, "grid_sweep"); (1, "constants") ] ))

let imagick ~epc_pages ~input =
  small_ws ~name:"imagick" ~seed_base:112 ~epc_pages ~input
    ~build:(fun epc input ->
      let image = frac epc 0.7 in
      let pass =
        Pattern.sequential ~site:0 ~base:0 ~pages:image ~events_per_page:6
          ~compute:2_600 ~jitter:0.2
      in
      ( Pattern.repeat (max 2 (scale input 4)) pass,
        image,
        [ (0, "convolve_row") ] ))

let leela ~epc_pages ~input =
  small_ws ~name:"leela" ~seed_base:113 ~epc_pages ~input
    ~build:(fun epc input ->
      let arena = frac epc 0.4 in
      let chase =
        Pattern.pointer_chase ~site:0 ~base:0 ~pages:arena
          ~events:(scale input 50_000) ~locality:0.7 ~compute:1_900 ~jitter:0.3
      in
      let hot =
        Pattern.zipf ~site:1 ~base:arena ~pages:(frac epc 0.08)
          ~events:(scale input 20_000) ~s:1.3 ~compute:1_500 ~jitter:0.3
      in
      ( Pattern.weighted_interleave [ (3, chase); (1, hot) ],
        arena + frac epc 0.08,
        [ (0, "uct_tree"); (1, "board_eval") ] ))

let nab ~epc_pages ~input =
  small_ws ~name:"nab" ~seed_base:114 ~epc_pages ~input
    ~build:(fun epc input ->
      let field = frac epc 0.12 in
      let streams = List.init 4 (fun i -> (i * field, field)) in
      let sweep =
        Pattern.multi_stream ~site:0 ~streams ~events_per_page:10 ~compute:2_400
          ~jitter:0.2
      in
      ( Pattern.repeat (max 2 (scale input 5)) sweep,
        4 * field,
        [ (0, "force_sweep") ] ))

let exchange2 ~epc_pages ~input =
  small_ws ~name:"exchange2" ~seed_base:115 ~epc_pages ~input
    ~build:(fun epc input ->
      let board = frac epc 0.15 in
      ( Pattern.zipf ~site:0 ~base:0 ~pages:board ~events:(scale input 70_000)
          ~s:1.1 ~compute:1_700 ~jitter:0.3,
        board,
        [ (0, "board_walk") ] ))

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [
    ("microbenchmark", Large_regular, microbenchmark);
    ("bwaves", Large_regular, bwaves);
    ("lbm", Large_regular, lbm);
    ("wrf", Large_regular, wrf);
    ("roms", Large_irregular, roms);
    ("mcf", Large_irregular, mcf);
    ("mcf.2006", Large_irregular, mcf_2006);
    ("deepsjeng", Large_irregular, deepsjeng);
    ("omnetpp", Large_irregular, omnetpp);
    ("xz", Large_irregular, xz);
    ("cactuBSSN", Small_working_set, cactuBSSN);
    ("imagick", Small_working_set, imagick);
    ("leela", Small_working_set, leela);
    ("nab", Small_working_set, nab);
    ("exchange2", Small_working_set, exchange2);
  ]

let by_name name =
  List.find_map (fun (n, _, m) -> if n = name then Some m else None) all

let category_of name =
  List.find_map (fun (n, c, _) -> if n = name then Some c else None) all

let large_working_set =
  List.filter_map
    (fun (n, c, _) ->
      match c with
      | Large_regular | Large_irregular -> Some n
      | Small_working_set -> None)
    all

let sip_supported name =
  (* Fortran benchmarks (bwaves, roms, wrf) are outside the paper's
     LLVM-based tool; omnetpp defeated it for other reasons (§5.2). *)
  match name with
  | "bwaves" | "roms" | "wrf" | "omnetpp" -> false
  | _ -> List.exists (fun (n, _, _) -> n = name) all
