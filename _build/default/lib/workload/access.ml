type t = { site : int; vpage : int; compute : int; thread : int }

let make ~site ~vpage ~compute ?(thread = 0) () =
  if vpage < 0 then invalid_arg "Access.make: negative page";
  if compute < 0 then invalid_arg "Access.make: negative compute";
  if thread < 0 then invalid_arg "Access.make: negative thread";
  { site; vpage; compute; thread }

let pp fmt t =
  Format.fprintf fmt "site=%d page=%d compute=%d thread=%d" t.site t.vpage
    t.compute t.thread
