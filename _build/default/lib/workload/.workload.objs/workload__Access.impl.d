lib/workload/access.ml: Format
