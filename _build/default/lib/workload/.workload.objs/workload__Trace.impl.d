lib/workload/trace.ml: Access Hashtbl List Pattern Printf Repro_util Seq
