lib/workload/parallel_apps.mli: Spec
