lib/workload/pattern.ml: Access Array List Repro_util Seq
