lib/workload/spec.mli: Input Trace
