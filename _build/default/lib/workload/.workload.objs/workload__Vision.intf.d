lib/workload/vision.mli: Spec
