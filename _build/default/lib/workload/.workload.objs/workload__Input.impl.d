lib/workload/input.ml: Printf
