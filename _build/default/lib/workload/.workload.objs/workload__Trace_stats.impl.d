lib/workload/trace_stats.ml: Access Format Hashtbl List Queue Seq Trace
