lib/workload/vision.ml: Input List Pattern Printf Trace
