lib/workload/trace.mli: Access Pattern Seq
