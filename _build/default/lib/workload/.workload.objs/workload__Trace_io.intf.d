lib/workload/trace_io.mli: Trace
