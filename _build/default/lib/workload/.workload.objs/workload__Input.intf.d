lib/workload/input.mli:
