lib/workload/synthetic.ml: Input List Pattern Trace
