lib/workload/trace_io.ml: Access Fun List Pattern Printf Seq String Trace
