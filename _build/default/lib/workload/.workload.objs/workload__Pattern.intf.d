lib/workload/pattern.mli: Access Repro_util Seq
