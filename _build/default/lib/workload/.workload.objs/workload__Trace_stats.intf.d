lib/workload/trace_stats.mli: Format Trace
