lib/workload/parallel_apps.ml: Fun Input List Pattern Printf Trace
