lib/workload/synthetic.mli: Spec
