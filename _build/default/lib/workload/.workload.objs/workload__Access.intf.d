lib/workload/access.mli: Format
