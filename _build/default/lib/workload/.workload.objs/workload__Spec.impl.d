lib/workload/spec.ml: Input List Pattern Printf Trace
