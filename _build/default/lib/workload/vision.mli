(** Models of the two SD-VBS real-world applications (§5.3) and the
    synthesized [mixed-blood] program (§5.4).

    SIFT's page behaviour is dominated by sequential sweeps over the image
    pyramid (DFP-friendly; the paper's tool finds 0 instrumentation
    points); MSER is dominated by irregular union-find traffic
    (SIP-friendly, 54 instrumentation points).  [mixed-blood] is the
    paper's synthesized validation: a sequential image scan followed by
    MSER blob detection, exercising both schemes at once. *)

val sift : Spec.model
val mser : Spec.model
val mixed_blood : Spec.model

val all : (string * Spec.model) list

val by_name : string -> Spec.model option
