(** Multi-threaded enclave workloads (extension).

    Algorithm 1 keeps a stream list {e per faulting thread}
    ([find_stream_list(ID)] in the paper), but the paper's evaluation is
    single-threaded.  These models exercise the per-thread machinery: each
    thread advances its own sequential stream while also issuing irregular
    accesses, so a single {e shared} stream list is churned out of
    existence by the combined fault stream while per-thread lists keep
    every stream alive. *)

val mt_scan : threads:int -> Spec.model
(** [threads] worker threads, each sequentially scanning a private region
    (with interleaved irregular probes into a shared cold pool).  Footprint
    ~[0.75 x threads] EPCs. *)

val mt_zipf : threads:int -> Spec.model
(** Threads sharing one zipf-hot pool plus private scratch scans — a
    server-like shape where per-thread streams are short. *)

val all : (string * Spec.model) list
(** Fixed 8-thread instances under the names ["mt-scan"] / ["mt-zipf"]. *)

val by_name : string -> Spec.model option
