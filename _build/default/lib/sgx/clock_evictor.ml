type t = {
  slots : int array; (* vpage per frame, -1 when free *)
  mutable free : int list;
  mutable hand : int;
  mutable used : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Clock_evictor.create: capacity must be positive";
  {
    slots = Array.make capacity (-1);
    free = List.init capacity (fun i -> i);
    hand = 0;
    used = 0;
  }

let capacity t = Array.length t.slots
let used t = t.used
let is_full t = t.used >= Array.length t.slots

let insert t vpage =
  match t.free with
  | [] -> invalid_arg "Clock_evictor.insert: EPC full"
  | slot :: rest ->
    t.free <- rest;
    t.slots.(slot) <- vpage;
    t.used <- t.used + 1;
    slot

let remove t ~slot =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg "Clock_evictor.remove: slot out of range";
  if t.slots.(slot) = -1 then invalid_arg "Clock_evictor.remove: slot already free";
  t.slots.(slot) <- -1;
  t.free <- slot :: t.free;
  t.used <- t.used - 1

let advance t = t.hand <- (t.hand + 1) mod Array.length t.slots

let choose_victim t ~accessed ~clear =
  if t.used = 0 then invalid_arg "Clock_evictor.choose_victim: EPC empty";
  (* At most two revolutions: the first may clear every bit, the second
     must then find a victim. *)
  let budget = ref (2 * Array.length t.slots) in
  let rec sweep () =
    if !budget <= 0 then invalid_arg "Clock_evictor.choose_victim: no victim found"
    else begin
      decr budget;
      let vpage = t.slots.(t.hand) in
      if vpage = -1 then begin
        advance t;
        sweep ()
      end
      else if accessed vpage then begin
        clear vpage;
        advance t;
        sweep ()
      end
      else begin
        advance t;
        vpage
      end
    end
  in
  sweep ()

let scan t f =
  Array.iter (fun vpage -> if vpage <> -1 then f vpage) t.slots

let resident t =
  Array.fold_right (fun vpage acc -> if vpage = -1 then acc else vpage :: acc) t.slots []
