(** CLOCK (second-chance) management of the EPC frame pool.

    Mirrors the Intel SGX driver's page reclaim: frames form a circular
    buffer over which a hand sweeps; a set access bit buys the page one
    more revolution.  The same structure hosts the periodic service-thread
    scan that clears access bits and — piggybacked, as in §4.2 of the
    paper — harvests "preloaded page was actually used" information for
    DFP's abort counters. *)

type t

val create : capacity:int -> t
(** An empty EPC with [capacity] frames.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val used : t -> int
(** Frames currently holding a page. *)

val is_full : t -> bool

val insert : t -> int -> int
(** [insert t vpage] places a page into a free frame and returns the slot
    index (to be recorded in the page-table entry).
    @raise Invalid_argument if full. *)

val remove : t -> slot:int -> unit
(** Free a frame by slot index (page evicted or enclave-destroyed).
    @raise Invalid_argument if the slot is already free. *)

val choose_victim : t -> accessed:(int -> bool) -> clear:(int -> unit) -> int
(** [choose_victim t ~accessed ~clear] runs the CLOCK sweep: pages whose
    access bit is set (per [accessed]) are given a second chance ([clear]
    is called and the hand advances); the first page with a clear bit is
    the victim.  Returns the victim's vpage {e without} freeing the slot —
    callers evict via {!remove} once the write-back completes.
    @raise Invalid_argument if the EPC is empty. *)

val scan : t -> (int -> unit) -> unit
(** [scan t f] visits every resident page once (service-thread pass);
    [f] receives the vpage.  Visit order is frame order, not recency. *)

val resident : t -> int list
(** Resident vpages in frame order (testing/report helper). *)
