type provenance = Demand | Preloaded of { mutable counted : bool }

type entry = {
  mutable present : bool;
  mutable accessed : bool;
  mutable prov : provenance;
  mutable slot : int;
}

type t = { entries : entry array; mutable resident : int }

let create ~pages =
  if pages <= 0 then invalid_arg "Page_table.create: pages must be positive";
  {
    entries =
      Array.init pages (fun _ ->
          { present = false; accessed = false; prov = Demand; slot = -1 });
    resident = 0;
  }

let pages t = Array.length t.entries

let entry t vpage =
  if vpage < 0 || vpage >= Array.length t.entries then
    invalid_arg
      (Printf.sprintf "Page_table: page %d outside ELRANGE [0,%d)" vpage
         (Array.length t.entries));
  t.entries.(vpage)

let present t vpage = (entry t vpage).present

let resident_count t = t.resident

let mark_loaded t vpage ~prov ~slot =
  let e = entry t vpage in
  if e.present then
    invalid_arg (Printf.sprintf "Page_table.mark_loaded: page %d already present" vpage);
  e.present <- true;
  e.prov <- prov;
  e.slot <- slot;
  (* Demand-loaded pages are hot by construction; preloaded pages start
     with a clear bit so the scan can tell whether they were ever used. *)
  e.accessed <- (match prov with Demand -> true | Preloaded _ -> false);
  t.resident <- t.resident + 1

let mark_evicted t vpage =
  let e = entry t vpage in
  if not e.present then
    invalid_arg (Printf.sprintf "Page_table.mark_evicted: page %d not present" vpage);
  e.present <- false;
  e.slot <- -1;
  e.accessed <- false;
  t.resident <- t.resident - 1

let touch t vpage =
  let e = entry t vpage in
  if not e.present then
    invalid_arg (Printf.sprintf "Page_table.touch: page %d not present" vpage);
  e.accessed <- true
