(** Per-enclave virtual page table.

    One entry per page of the enclave linear address range (ELRANGE).  The
    simulator works at page granularity throughout — SGX clears the bottom
    12 bits of faulting addresses before the OS sees them (§3.1), so page
    numbers are the finest information any scheme can observe. *)

type provenance =
  | Demand  (** Loaded by the ordinary fault path. *)
  | Preloaded of { mutable counted : bool }
      (** Loaded ahead of demand by DFP or SIP.  [counted] records whether
          the CLOCK service scan has already credited this page to the
          [AccPreloadCounter] (§4.2); it prevents double counting. *)

type entry = {
  mutable present : bool;  (** Resident in EPC. *)
  mutable accessed : bool;  (** PTE access bit, cleared by the scan. *)
  mutable prov : provenance;
  mutable slot : int;
      (** Index of the EPC frame slot holding this page, [-1] if absent.
          Maintained by {!Clock_evictor}. *)
}

type t

val create : pages:int -> t
(** All pages absent.  @raise Invalid_argument if [pages <= 0]. *)

val pages : t -> int

val entry : t -> int -> entry
(** @raise Invalid_argument if the page number is out of ELRANGE. *)

val present : t -> int -> bool

val resident_count : t -> int
(** Number of present pages (O(1), maintained incrementally). *)

val mark_loaded : t -> int -> prov:provenance -> slot:int -> unit
(** Transition a page to present.  Demand loads come in with the access
    bit set (they are about to be touched); preloads come in clear, which
    is exactly the §4.2 bookkeeping.  @raise Invalid_argument if already
    present. *)

val mark_evicted : t -> int -> unit
(** Transition a page to absent.  @raise Invalid_argument if absent. *)

val touch : t -> int -> unit
(** Set the access bit of a present page (app-side memory access). *)
