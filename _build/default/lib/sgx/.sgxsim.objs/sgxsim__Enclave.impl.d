lib/sgx/enclave.ml: Clock_evictor Cost_model Event List Load_channel Metrics Option Page_table Repro_util
