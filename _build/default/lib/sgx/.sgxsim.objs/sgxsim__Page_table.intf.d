lib/sgx/page_table.mli:
