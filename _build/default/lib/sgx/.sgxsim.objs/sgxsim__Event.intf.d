lib/sgx/event.mli: Format Load_channel
