lib/sgx/metrics.ml: Format
