lib/sgx/page_table.ml: Array Printf
