lib/sgx/clock_evictor.ml: Array List
