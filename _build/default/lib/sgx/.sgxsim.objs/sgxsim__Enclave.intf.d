lib/sgx/enclave.mli: Cost_model Event Load_channel Metrics
