lib/sgx/event.ml: Format List Load_channel Repro_util
