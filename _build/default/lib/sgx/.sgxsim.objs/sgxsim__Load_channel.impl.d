lib/sgx/load_channel.ml: List Printf
