lib/sgx/metrics.mli: Format
