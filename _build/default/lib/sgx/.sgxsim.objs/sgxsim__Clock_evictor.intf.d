lib/sgx/clock_evictor.mli:
