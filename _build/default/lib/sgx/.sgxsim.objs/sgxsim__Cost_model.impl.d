lib/sgx/cost_model.ml: Format
