lib/sgx/load_channel.mli:
