lib/sgx/cost_model.mli: Format
