type kind = Demand | Preload_dfp | Preload_sip

type inflight = { vpage : int; kind : kind; started : int; finishes : int }

type t = {
  mutable current : inflight option;
  mutable queue : (int * int) list; (* (vpage, queued_at), FIFO: head is next *)
  mutable rev_tail : (int * int) list; (* amortised FIFO second half *)
  mutable free_at : int;
}

let create () = { current = None; queue = []; rev_tail = []; free_at = 0 }

let in_flight t = t.current

let is_busy t ~now = match t.current with None -> false | Some l -> l.finishes > now

let busy_until t ~now =
  match t.current with None -> now | Some l -> max now l.finishes

let free_at t = t.free_at

let begin_load t ~vpage ~kind ~now ~duration =
  if is_busy t ~now then invalid_arg "Load_channel.begin_load: channel busy";
  (match t.current with
  | Some stale ->
    invalid_arg
      (Printf.sprintf
         "Load_channel.begin_load: completed load of page %d not collected"
         stale.vpage)
  | None -> ());
  let load = { vpage; kind; started = now; finishes = now + duration } in
  t.current <- Some load;
  t.free_at <- load.finishes;
  load

let take_completed t ~now =
  match t.current with
  | Some l when l.finishes <= now ->
    t.current <- None;
    Some l
  | Some _ | None -> None

let normalize t =
  if t.queue = [] then begin
    t.queue <- List.rev t.rev_tail;
    t.rev_tail <- []
  end

let queue_preload t ~vpage ~at = t.rev_tail <- (vpage, at) :: t.rev_tail

let next_queued t =
  normalize t;
  match t.queue with [] -> None | x :: _ -> Some x

let pop_queued t =
  normalize t;
  match t.queue with
  | [] -> None
  | x :: rest ->
    t.queue <- rest;
    Some x

let queued t = List.map fst t.queue @ List.rev_map fst t.rev_tail

let queue_length t = List.length t.queue + List.length t.rev_tail

let abort_queued t =
  let n = queue_length t in
  t.queue <- [];
  t.rev_tail <- [];
  n

let abort_queued_where t pred =
  let keep (vpage, _) = not (pred vpage) in
  let before = queue_length t in
  t.queue <- List.filter keep t.queue;
  t.rev_tail <- List.filter keep t.rev_tail;
  before - queue_length t

let remove_queued t vpage = abort_queued_where t (fun p -> p = vpage) > 0

let queued_mem t vpage =
  List.exists (fun (p, _) -> p = vpage) t.queue
  || List.exists (fun (p, _) -> p = vpage) t.rev_tail
