lib/sim/report.ml: Array Buffer List Printf Repro_util Runner Sgxsim String
