lib/sim/runner.ml: Preload Seq Sgxsim Workload
