lib/sim/report.mli: Repro_util Runner
