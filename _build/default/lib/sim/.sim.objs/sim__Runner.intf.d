lib/sim/runner.mli: Preload Sgxsim Workload
