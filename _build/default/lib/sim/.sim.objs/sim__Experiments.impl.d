lib/sim/experiments.ml: Format List Option Preload Printf Report Repro_util Runner Seq Sgxsim String Workload
