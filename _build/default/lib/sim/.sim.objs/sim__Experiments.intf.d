lib/sim/experiments.mli: Sgxsim Workload
