(** Deterministic pseudo-random number generation.

    All randomness in the reproduction flows through this module so that
    every experiment is reproducible bit-for-bit from its seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): tiny state,
    excellent statistical quality for simulation purposes, and trivially
    splittable, which lets independent workload phases draw from
    independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future
    outputs; useful for look-ahead in tests. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of [t]'s remaining stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val geometric : t -> float -> int
(** [geometric t p] draws the number of failures before the first success
    of a Bernoulli([p]) sequence; mean [(1-p)/p].  Requires [0 < p <= 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution over [\[0, n)] with
    exponent [s] via inverse-CDF on a precomputation-free rejection
    sampler.  Heavier head for larger [s]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
