type 'a t = {
  capacity : int;
  mutable items : 'a option array;
  mutable start : int; (* index of oldest item *)
  mutable length : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { capacity; items = Array.make capacity None; start = 0; length = 0 }

let capacity t = t.capacity
let length t = t.length

let push t x =
  if t.length < t.capacity then begin
    t.items.((t.start + t.length) mod t.capacity) <- Some x;
    t.length <- t.length + 1
  end
  else begin
    t.items.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.capacity
  end

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Ring.get: index out of range";
  match t.items.((t.start + i) mod t.capacity) with
  | Some x -> x
  | None -> assert false

let newest t = if t.length = 0 then None else Some (get t (t.length - 1))
let oldest t = if t.length = 0 then None else Some (get t 0)

let iter f t =
  for i = 0 to t.length - 1 do
    f (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.items 0 t.capacity None;
  t.start <- 0;
  t.length <- 0
