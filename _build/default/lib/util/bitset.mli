(** Dense bitsets over [\[0, size)].

    This is the data structure behind the per-enclave page presence bitmap
    of SIP (§4.3 of the paper): one bit per enclave virtual page, shared
    between the enclave and the untrusted OS. *)

type t

val create : int -> t
(** All bits clear.  @raise Invalid_argument if [size < 0]. *)

val size : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

val assign : t -> int -> bool -> unit
(** [assign t i b] sets bit [i] to [b]. *)

val cardinal : t -> int
(** Number of set bits (O(words)). *)

val clear_all : t -> unit

val iter_set : (int -> unit) -> t -> unit
(** Visit indices of set bits in increasing order. *)

val copy : t -> t

val equal : t -> t -> bool
