(** Small fixed-capacity recency (LRU) lists.

    This is the shape of Algorithm 1's [stream_list] in the paper: a short
    list ordered most-recently-used first, where hits are promoted to the
    head and insertion into a full list replaces the least-recently-used
    entry.  Capacities are tens of entries, so operations are O(n) list
    scans by design — clarity over asymptotics. *)

type 'a t

val create : int -> 'a t
(** @raise Invalid_argument if the capacity is not positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool

val find : 'a t -> ('a -> bool) -> 'a option
(** First match in MRU-to-LRU order, without promoting it. *)

val promote : 'a t -> ('a -> bool) -> bool
(** Move the first match to the head; [false] if nothing matched. *)

val insert : 'a t -> 'a -> 'a option
(** Insert at the head.  When full, the least-recently-used entry is
    dropped and returned. *)

val remove : 'a t -> ('a -> bool) -> bool
(** Remove the first match; [false] if nothing matched. *)

val lru : 'a t -> 'a option
(** The least-recently-used entry. *)

val mru : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** MRU first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** MRU first. *)

val exists : 'a t -> ('a -> bool) -> bool

val clear : 'a t -> unit
