type t = { size : int; words : Bytes.t }

let create size =
  if size < 0 then invalid_arg "Bitset.create: negative size";
  { size; words = Bytes.make ((size + 7) / 8) '\000' }

let size t = t.size

let check t i op =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" op i t.size)

let set t i =
  check t i "set";
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i "clear";
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let mem t i =
  check t i "mem";
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  b land (1 lsl (i land 7)) <> 0

let assign t i v = if v then set t i else clear t i

let popcount8 =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount8 c) t.words;
  !n

let clear_all t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let iter_set f t =
  for w = 0 to Bytes.length t.words - 1 do
    let b = Char.code (Bytes.get t.words w) in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then begin
          let i = (w lsl 3) + bit in
          if i < t.size then f i
        end
      done
  done

let copy t = { size = t.size; words = Bytes.copy t.words }

let equal a b = a.size = b.size && Bytes.equal a.words b.words
