lib/util/bitset.ml: Array Bytes Char Printf
