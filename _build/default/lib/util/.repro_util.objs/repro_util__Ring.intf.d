lib/util/ring.mli:
