lib/util/stats.mli:
