lib/util/bitset.mli:
