lib/util/prng.mli:
