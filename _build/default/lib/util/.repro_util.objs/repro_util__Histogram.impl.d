lib/util/histogram.ml: Array Format String
