lib/util/lru.ml: List
