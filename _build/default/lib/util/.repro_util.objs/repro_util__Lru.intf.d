lib/util/lru.mli:
