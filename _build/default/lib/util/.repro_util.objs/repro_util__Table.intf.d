lib/util/table.mli:
