type 'a t = { capacity : int; mutable items : 'a list (* MRU first *) }

let create capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; items = [] }

let capacity t = t.capacity
let length t = List.length t.items
let is_full t = length t >= t.capacity

let find t pred = List.find_opt pred t.items

let promote t pred =
  let rec extract acc = function
    | [] -> None
    | x :: rest when pred x -> Some (x, List.rev_append acc rest)
    | x :: rest -> extract (x :: acc) rest
  in
  match extract [] t.items with
  | None -> false
  | Some (x, rest) ->
    t.items <- x :: rest;
    true

let insert t x =
  if is_full t then begin
    (* Drop the tail (LRU) and return it. *)
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | y :: rest -> split_last (y :: acc) rest
    in
    let kept, dropped = split_last [] t.items in
    t.items <- x :: kept;
    Some dropped
  end
  else begin
    t.items <- x :: t.items;
    None
  end

let remove t pred =
  let rec extract acc = function
    | [] -> None
    | x :: rest when pred x -> Some (List.rev_append acc rest)
    | x :: rest -> extract (x :: acc) rest
  in
  match extract [] t.items with
  | None -> false
  | Some rest ->
    t.items <- rest;
    true

let lru t =
  match List.rev t.items with [] -> None | x :: _ -> Some x

let mru t = match t.items with [] -> None | x :: _ -> Some x
let to_list t = t.items
let iter f t = List.iter f t.items
let exists t pred = List.exists pred t.items
let clear t = t.items <- []
