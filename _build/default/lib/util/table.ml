type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reverse order *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.headers) (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let aligns = List.map snd t.headers in
  let emit_cells cells =
    List.iteri
      (fun i (cell, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) cell))
      (List.combine cells aligns);
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells (List.map fst t.headers);
  rule ();
  List.iter
    (function Cells c -> emit_cells c | Separator -> rule ())
    (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (x *. 100.0)

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
