(** Fixed-capacity ring buffer keeping the most recent [capacity] items.
    Used to retain recent fault history windows and event logs without
    unbounded growth. *)

type 'a t

val create : int -> 'a t
(** [create capacity].  @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Number of items currently retained ([<= capacity]). *)

val push : 'a t -> 'a -> unit
(** Append; evicts the oldest retained item when full. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest retained item, [0 <= i < length t].
    @raise Invalid_argument out of range. *)

val newest : 'a t -> 'a option
val oldest : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)

val clear : 'a t -> unit
