(** Plain-text table rendering for experiment reports.

    The bench harness prints the same rows/series the paper's tables and
    figures report; this module keeps that output aligned and uniform. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t
(** Column headers with per-column alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** Full table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell; default 2 decimals. *)

val cell_pct : ?decimals:int -> float -> string
(** Format a fraction as a percentage cell, e.g. [0.114] -> ["11.4%"]. *)

val cell_int : int -> string
(** Thousands-separated integer cell. *)
