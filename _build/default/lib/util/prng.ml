type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

(* Non-negative 62-bit int from the top bits; OCaml ints are 63-bit. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p not in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    (* Guard against log 0. *)
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if n = 1 then 0
  else begin
    (* Rejection method of Jason Crease / Devroye for the Zipf distribution;
       no O(n) table, so it works for very large supports. *)
    let nf = float_of_int n in
    let if_exponent x = Float.pow x (1.0 -. s) in
    let inv_if x =
      if Float.abs (s -. 1.0) < 1e-9 then Float.exp x else Float.pow x (1.0 /. (1.0 -. s))
    in
    let h x =
      if Float.abs (s -. 1.0) < 1e-9 then Float.log x else (if_exponent x -. 1.0) /. (1.0 -. s)
    in
    let hmax = h (nf +. 0.5) in
    let hmin = h 0.5 in
    let rec draw () =
      let u = hmin +. (float t 1.0 *. (hmax -. hmin)) in
      let x =
        if Float.abs (s -. 1.0) < 1e-9 then inv_if u
        else inv_if (1.0 +. ((1.0 -. s) *. u))
      in
      let k = Float.round x in
      let k = Float.max 1.0 (Float.min nf k) in
      let accept =
        (* Accept with probability proportional to k^-s over the envelope. *)
        let ratio = Float.pow (k /. x) (-.s) in
        let ratio = if Float.is_nan ratio then 1.0 else Float.min 1.0 ratio in
        chance t ratio
      in
      if accept then int_of_float k - 1 else draw ()
    in
    draw ()
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
