examples/tuning.mli:
