examples/quickstart.ml: Preload Printf Repro_util Sgxsim Sim Workload
