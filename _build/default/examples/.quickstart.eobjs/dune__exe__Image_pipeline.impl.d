examples/image_pipeline.ml: List Preload Printf Repro_util Sim String Workload
