examples/mixed_blood.ml: Preload Printf Repro_util Sgxsim Sim Workload
