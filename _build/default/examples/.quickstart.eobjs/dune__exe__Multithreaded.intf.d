examples/multithreaded.mli:
