examples/mixed_blood.mli:
