examples/quickstart.mli:
