examples/tuning.ml: List Preload Printf Repro_util Sim Workload
