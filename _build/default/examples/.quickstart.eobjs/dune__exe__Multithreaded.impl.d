examples/multithreaded.ml: List Preload Printf Repro_util Sgxsim Sim String Workload
